"""Section 7 extensions: doall parallel loops and barriers."""

import pytest

from repro.api import front_end, listing
from repro.errors import ParseError
from repro.cfg.blocks import NodeKind
from repro.cfg.builder import build_flow_graph
from repro.ir.stmts import SBarrier
from repro.ir.structured import CobeginRegion, iter_statements
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.pretty import format_program
from repro.vm.explore import explore
from repro.vm.machine import run_random


class TestDoallParsing:
    def test_basic(self):
        program = parse("doall i = 0 to 3 { a = i; }")
        stmt = program.body.stmts[0]
        assert isinstance(stmt, ast.DoAll)
        assert (stmt.var, stmt.low, stmt.high) == ("i", 0, 3)

    def test_negative_bounds(self):
        stmt = parse("doall i = -2 to 2 { a = i; }").body.stmts[0]
        assert (stmt.low, stmt.high) == (-2, 2)

    def test_nonliteral_bounds_rejected(self):
        with pytest.raises(ParseError):
            parse("doall i = n to 3 { a = i; }")

    def test_pretty_roundtrip(self):
        src = "doall i = 1 to 4\n{\n    s = s + i;\n}"
        text = format_program(parse(src))
        assert format_program(parse(text)) == text


class TestDoallExpansion:
    def test_one_thread_per_iteration(self):
        program = front_end("doall i = 1 to 3 { s = s + i; }")
        region = next(
            it for it in program.body.items if isinstance(it, CobeginRegion)
        )
        assert len(region.threads) == 3
        assert [t.label for t in region.threads] == ["i1", "i2", "i3"]

    def test_index_private_per_iteration(self):
        program = front_end("doall i = 0 to 1 { s = s + i; }")
        names = {
            s.def_name()
            for s, _ in iter_statements(program)
            if s.def_name() is not None
        }
        privates = {n for n in names if n.startswith("i__it")}
        assert len(privates) == 2

    def test_empty_range_elides(self):
        program = front_end("doall i = 5 to 2 { s = s + i; } print(1);")
        assert not any(
            isinstance(it, CobeginRegion) for it in program.body.items
        )

    def test_semantics_with_lock(self):
        program = front_end(
            """
            s = 0;
            doall i = 1 to 3 { lock(L); s = s + i; unlock(L); }
            print(s);
            """
        )
        res = explore(program)
        assert res.outcomes == {(("print", (6,)),)}

    def test_iterations_run_concurrently(self):
        program = front_end(
            "doall i = 1 to 2 { print(i); }"
        )
        res = explore(program)
        assert len(res.outcomes) == 2  # both print orders


class TestBarrier:
    def test_own_pfg_node(self):
        program = front_end("cobegin begin barrier(B); end coend")
        g = build_flow_graph(program)
        assert len(g.nodes_of_kind(NodeKind.BARRIER)) == 1

    def test_enforces_phase_ordering(self):
        program = front_end(
            """
            cobegin
            T0: begin x = 1; barrier(B); print(y); end
            T1: begin y = 2; barrier(B); print(x); end
            coend
            """
        )
        res = explore(program)
        # After the barrier, each thread must see the other's write.
        for outcome in res.outcomes:
            values = {e[1][0] for e in outcome}
            assert values == {1, 2}
        assert not res.can_deadlock

    def test_unreached_barrier_deadlocks(self):
        program = front_end(
            """
            c = 0;
            cobegin
            T0: begin if (c > 0) { barrier(B); } end
            T1: begin barrier(B); end
            coend
            """
        )
        assert explore(program).can_deadlock

    def test_cyclic_reuse_in_loop(self):
        program = front_end(
            """
            cobegin
            T0: begin private i = 0; while (i < 3) { barrier(B); i = i + 1; } end
            T1: begin private j = 0; while (j < 3) { barrier(B); j = j + 1; } end
            coend
            print(7);
            """
        )
        res = explore(program)
        assert res.outcomes == {(("print", (7,)),)}

    def test_single_mentioner_passes(self):
        # Participants = threads that mention the barrier: a lone
        # mentioner sails through.
        program = front_end(
            "cobegin begin barrier(B); x = 1; end begin y = 2; end coend print(x, y);"
        )
        ex = run_random(program, seed=0)
        assert ex.printed == [(1, 2)]

    def test_barrier_survives_dce(self):
        from repro.opt.pipeline import optimize

        program = front_end(
            """
            cobegin
            T0: begin barrier(B); end
            T1: begin barrier(B); print(1); end
            coend
            """
        )
        optimize(program)
        barriers = [
            s for s, _ in iter_statements(program) if isinstance(s, SBarrier)
        ]
        assert len(barriers) == 2

    def test_optimization_preserves_barrier_semantics(self):
        from repro.opt.pipeline import optimize
        from repro.verify import exhaustive_equivalence

        program = front_end(
            """
            a = 0;
            cobegin
            T0: begin lock(L); a = 5; unlock(L); barrier(B); print(a); end
            T1: begin barrier(B); lock(L); a = a + 1; unlock(L); end
            coend
            print(a);
            """
        )
        report = optimize(program)
        res = exhaustive_equivalence(report.baseline, program)
        assert res.complete and res.equal, res.explain()

    def test_nested_cobegin_scoping(self):
        # The inner cobegin's barrier counts only inner threads.
        program = front_end(
            """
            cobegin
            Outer0: begin
                cobegin
                I0: begin barrier(B); end
                I1: begin barrier(B); end
                coend
            end
            Outer1: begin z = 1; end
            coend
            print(z);
            """
        )
        res = explore(program)
        assert res.outcomes == {(("print", (1,)),)}
        assert not res.can_deadlock
