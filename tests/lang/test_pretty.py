"""Pretty-printer tests, including the parse∘format round-trip."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import ast_nodes as ast
from repro.lang.parser import parse
from repro.lang.pretty import format_expr, format_program


def roundtrip(source: str) -> None:
    """format(parse(s)) must re-parse to an identical rendering."""
    first = format_program(parse(source))
    second = format_program(parse(first))
    assert first == second


class TestFormatExpr:
    def test_minimal_parens(self):
        expr = parse("x = a + b * c;").body.stmts[0].value
        assert format_expr(expr) == "a + b * c"

    def test_needed_parens_kept(self):
        expr = parse("x = (a + b) * c;").body.stmts[0].value
        assert format_expr(expr) == "(a + b) * c"

    def test_right_nested_subtraction_parenthesized(self):
        expr = parse("x = a - (b - c);").body.stmts[0].value
        assert format_expr(expr) == "a - (b - c)"

    def test_unary(self):
        expr = parse("x = -(a + b);").body.stmts[0].value
        assert format_expr(expr) == "-(a + b)"

    def test_call(self):
        expr = parse("x = f(a, b + 1);").body.stmts[0].value
        assert format_expr(expr) == "f(a, b + 1)"


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "x = 1;",
            "private p = 2;",
            "if (a > 1) { b = 2; } else { b = 3; }",
            "while (i < 10) { i = i + 1; }",
            "lock(L); a = a + 1; unlock(L);",
            "set(e); wait(e);",
            "print(a, b);",
            "f(a);",
            "skip;",
            "cobegin T0: begin a = 1; end T1: begin b = 2; end coend",
        ],
    )
    def test_roundtrip(self, source):
        roundtrip(source)

    def test_figure2_roundtrip(self):
        from tests.conftest import FIGURE2_SOURCE

        roundtrip(FIGURE2_SOURCE)

    def test_deep_nesting_roundtrip(self):
        roundtrip(
            """
            if (a) { if (b) { if (c) { x = 1; } } else { y = 2; } }
            while (i < 3) { if (i == 1) { cobegin begin q = 1; end coend } }
            """
        )


# Random expression round-trip: format then reparse gives the same tree
# (up to rendering), catching precedence/parenthesization bugs.

_names = st.sampled_from(["a", "b", "c", "x", "y"])


def _exprs(depth):
    base = st.one_of(
        st.integers(min_value=0, max_value=99).map(ast.IntLit),
        _names.map(ast.Name),
    )
    if depth == 0:
        return base
    sub = _exprs(depth - 1)
    return st.one_of(
        base,
        st.tuples(st.sampled_from(["+", "-", "*", "/", "%"]), sub, sub).map(
            lambda t: ast.BinOp(t[0], t[1], t[2])
        ),
        st.tuples(st.sampled_from(["-", "!"]), sub).map(
            lambda t: ast.UnaryOp(t[0], t[1])
        ),
        st.tuples(st.sampled_from(["<", "<=", "==", "!="]), sub, sub).map(
            lambda t: ast.BinOp(t[0], t[1], t[2])
        ),
    )


@given(_exprs(4))
@settings(max_examples=200, deadline=None)
def test_expr_roundtrip_property(expr):
    rendered = format_expr(expr)
    reparsed = parse(f"x = {rendered};").body.stmts[0].value
    assert format_expr(reparsed) == rendered
