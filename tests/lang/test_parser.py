"""Parser unit tests."""

import pytest

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse


def only_stmt(source):
    program = parse(source)
    assert len(program.body.stmts) == 1
    return program.body.stmts[0]


class TestStatements:
    def test_assignment(self):
        stmt = only_stmt("x = 1;")
        assert isinstance(stmt, ast.Assign)
        assert stmt.target == "x"
        assert isinstance(stmt.value, ast.IntLit)

    def test_private_decl(self):
        stmt = only_stmt("private t;")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.ident == "t"
        assert stmt.init is None

    def test_private_decl_with_init(self):
        stmt = only_stmt("private t = 3;")
        assert isinstance(stmt.init, ast.IntLit)

    def test_if_without_else(self):
        stmt = only_stmt("if (a > 1) { b = 2; }")
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.else_block is None
        assert len(stmt.then_block.stmts) == 1

    def test_if_with_else(self):
        stmt = only_stmt("if (a) { b = 1; } else { b = 2; }")
        assert stmt.else_block is not None

    def test_if_single_statement_block(self):
        stmt = only_stmt("if (a) b = 1;")
        assert isinstance(stmt.then_block.stmts[0], ast.Assign)

    def test_while(self):
        stmt = only_stmt("while (i < 10) { i = i + 1; }")
        assert isinstance(stmt, ast.WhileStmt)

    def test_lock_unlock(self):
        program = parse("lock(L); unlock(L);")
        assert isinstance(program.body.stmts[0], ast.LockStmt)
        assert isinstance(program.body.stmts[1], ast.UnlockStmt)
        assert program.body.stmts[0].lock_name == "L"

    def test_set_wait(self):
        program = parse("set(ev); wait(ev);")
        assert isinstance(program.body.stmts[0], ast.SetStmt)
        assert isinstance(program.body.stmts[1], ast.WaitStmt)

    def test_print_multiple_args(self):
        stmt = only_stmt("print(a, b + 1, 3);")
        assert isinstance(stmt, ast.PrintStmt)
        assert len(stmt.args) == 3

    def test_call_statement(self):
        stmt = only_stmt("f(a, 2);")
        assert isinstance(stmt, ast.CallStmt)
        assert stmt.func == "f"
        assert len(stmt.args) == 2

    def test_call_statement_no_args(self):
        stmt = only_stmt("f();")
        assert stmt.args == []

    def test_skip(self):
        assert isinstance(only_stmt("skip;"), ast.Skip)


class TestCobegin:
    def test_labeled_threads(self):
        stmt = only_stmt("cobegin T0: begin a = 1; end T1: begin b = 2; end coend")
        assert isinstance(stmt, ast.Cobegin)
        assert [t.label for t in stmt.threads] == ["T0", "T1"]

    def test_unlabeled_threads(self):
        stmt = only_stmt("cobegin begin a = 1; end begin b = 2; end coend")
        assert [t.label for t in stmt.threads] == [None, None]

    def test_brace_threads(self):
        stmt = only_stmt("cobegin { a = 1; } { b = 2; } coend")
        assert len(stmt.threads) == 2

    def test_nested_cobegin(self):
        stmt = only_stmt(
            """
            cobegin
            begin
                cobegin begin x = 1; end begin y = 2; end coend
            end
            begin z = 3; end
            coend
            """
        )
        inner = stmt.threads[0].body.stmts[0]
        assert isinstance(inner, ast.Cobegin)

    def test_empty_cobegin_rejected(self):
        with pytest.raises(ParseError):
            parse("cobegin coend")

    def test_unterminated_cobegin(self):
        with pytest.raises(ParseError):
            parse("cobegin begin a = 1; end")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        stmt = only_stmt("x = a + b * c;")
        assert stmt.value.op == "+"
        assert stmt.value.right.op == "*"

    def test_precedence_cmp_over_logic(self):
        stmt = only_stmt("x = a < b && c > d;")
        assert stmt.value.op == "&&"

    def test_parentheses(self):
        stmt = only_stmt("x = (a + b) * c;")
        assert stmt.value.op == "*"
        assert stmt.value.left.op == "+"

    def test_left_associativity(self):
        stmt = only_stmt("x = a - b - c;")
        # (a - b) - c
        assert stmt.value.left.op == "-"
        assert isinstance(stmt.value.right, ast.Name)

    def test_unary_minus(self):
        stmt = only_stmt("x = -a + 1;")
        assert stmt.value.op == "+"
        assert isinstance(stmt.value.left, ast.UnaryOp)

    def test_not(self):
        stmt = only_stmt("x = !a;")
        assert isinstance(stmt.value, ast.UnaryOp)
        assert stmt.value.op == "!"

    def test_call_expression(self):
        stmt = only_stmt("x = g(a) + 1;")
        assert isinstance(stmt.value.left, ast.CallExpr)

    def test_nested_calls(self):
        stmt = only_stmt("x = f(g(1), h());")
        assert isinstance(stmt.value, ast.CallExpr)
        assert isinstance(stmt.value.args[0], ast.CallExpr)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "x = ;",
            "x = 1",
            "if a { }",
            "while () { }",
            "lock L;",
            "print();",
            "x + 1;",
            "= 5;",
            "{",
            "begin a = 1;",
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_error_mentions_location(self):
        try:
            parse("x = ;")
        except ParseError as exc:
            assert exc.location.line == 1
        else:  # pragma: no cover
            raise AssertionError("expected ParseError")


class TestPaperPrograms:
    def test_figure1_parses(self):
        from tests.conftest import FIGURE1_SOURCE

        program = parse(FIGURE1_SOURCE)
        cobegin = program.body.stmts[2]
        assert isinstance(cobegin, ast.Cobegin)
        assert len(cobegin.threads) == 2

    def test_figure2_parses(self):
        from tests.conftest import FIGURE2_SOURCE

        program = parse(FIGURE2_SOURCE)
        assert len(program.body.stmts) == 5  # a, b, cobegin, print, print
