"""Named workload families."""

from repro.cfg.builder import build_flow_graph
from repro.mutex.identify import identify_mutex_structures
from repro.synth import (
    bank_accounts,
    event_pipeline,
    licm_padding,
    lock_density_sweep,
    paper_figure1,
    paper_figure2,
    shared_counters,
)
from repro.verify import deterministic_output
from repro.vm.machine import run_random


class TestWorkloads:
    def test_bank_conserves_money(self):
        program = bank_accounts(n_threads=3, n_transfers=2)
        for seed in range(6):
            ex = run_random(program, seed=seed)
            (b0, b1) = ex.printed[-1]
            assert b0 + b1 == 200

    def test_counters_deterministic(self):
        program = shared_counters(n_threads=2, n_counters=2, n_incr=2)
        out = deterministic_output(program, seeds=range(8))
        # 2 threads × 2 increments spread over 2 counters → 2 each.
        assert out == (("print", (2, 2)),)

    def test_event_pipeline_deterministic(self):
        program = event_pipeline(n_stages=3)
        out = deterministic_output(program, seeds=range(8))
        # data1 = 1*2+0 = 2; data2 = 2*2+1 = 5; data3 = 5*2+2 = 12
        assert out == (("print", (12,)),)

    def test_licm_padding_has_movable_code(self):
        from repro.cssame import build_cssame
        from repro.opt import lock_independent_code_motion

        program = licm_padding(n_threads=2, n_private_stmts=3)
        build_cssame(program)
        stats = lock_independent_code_motion(program)
        assert stats.total_moved >= 4

    def test_sweep_lock_fraction(self):
        p_full = lock_density_sweep(1.0)
        p_none = lock_density_sweep(0.0)
        g_full = build_flow_graph(p_full)
        g_none = build_flow_graph(p_none)
        assert len(identify_mutex_structures(g_full)["D"]) == 2
        assert "D" not in identify_mutex_structures(g_none)

    def test_paper_programs_build(self):
        from repro.cssame import build_cssame

        for mk in (paper_figure1, paper_figure2):
            form = build_cssame(mk())
            assert form.rewrite_stats.args_removed > 0
