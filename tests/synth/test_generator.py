"""Random program generator."""

from repro.cfg.builder import build_flow_graph
from repro.ir.stmts import SLock, SUnlock
from repro.ir.structured import CobeginRegion, iter_statements
from repro.mutex.identify import identify_mutex_structures
from repro.synth import GeneratorConfig, generate_program, generate_source
from repro.vm.machine import run_random


class TestDeterminism:
    def test_same_seed_same_source(self):
        cfg = GeneratorConfig(seed=7)
        assert generate_source(cfg) == generate_source(cfg)

    def test_different_seeds_differ(self):
        a = generate_source(GeneratorConfig(seed=1))
        b = generate_source(GeneratorConfig(seed=2))
        assert a != b


class TestWellFormedness:
    def test_parses_and_builds(self):
        for seed in range(20):
            program = generate_program(GeneratorConfig(seed=seed, p_while=0.2))
            g = build_flow_graph(program)
            g.validate()

    def test_locks_always_matched(self):
        for seed in range(20):
            program = generate_program(
                GeneratorConfig(seed=seed, n_locks=2, p_critical=0.8)
            )
            g = build_flow_graph(program)
            structures = identify_mutex_structures(g)
            locks = sum(
                1 for s, _ in iter_statements(program) if isinstance(s, SLock)
            )
            unlocks = sum(
                1 for s, _ in iter_statements(program) if isinstance(s, SUnlock)
            )
            assert locks == unlocks
            bodies = sum(len(s) for s in structures.values())
            assert bodies == locks  # every section forms a body

    def test_thread_count_respected(self):
        program = generate_program(GeneratorConfig(seed=3, n_threads=4))
        region = next(
            i for i in program.body.items if isinstance(i, CobeginRegion)
        )
        assert len(region.threads) == 4

    def test_programs_terminate(self):
        for seed in range(10):
            program = generate_program(
                GeneratorConfig(seed=seed, p_while=0.3, loop_bound=2)
            )
            ex = run_random(program, seed=seed, fuel=50_000)
            assert ex.steps < 50_000

    def test_race_free_mode_has_no_races(self):
        from repro.cfg.conflicts import add_conflict_edges
        from repro.mutex.races import detect_races

        for seed in range(10):
            program = generate_program(
                GeneratorConfig(seed=seed, race_free=True, n_locks=2,
                                p_critical=0.7)
            )
            g = build_flow_graph(program)
            structures = identify_mutex_structures(g)
            races = detect_races(g, structures)
            assert races == [], f"seed {seed}: {races}"

    def test_racy_mode_usually_races(self):
        from repro.mutex.races import detect_races

        racy = 0
        for seed in range(10):
            program = generate_program(
                GeneratorConfig(seed=seed, race_free=False, p_critical=0.2)
            )
            g = build_flow_graph(program)
            structures = identify_mutex_structures(g)
            if detect_races(g, structures):
                racy += 1
        assert racy >= 5
