"""Runner semantics: stats, repeat caps, traced work pass, errors."""

from repro.bench.registry import Benchmark
from repro.bench.runner import (
    RECORD_SCHEMA,
    run_benchmark,
    run_suite,
    wall_stats,
)
from repro.obs.prof import record_work


class TestWallStats:
    def test_empty(self):
        s = wall_stats([])
        assert s["repeats"] == 0 and s["median_ms"] == 0.0

    def test_median_and_min(self):
        s = wall_stats([0.003, 0.001, 0.002])
        assert s["repeats"] == 3
        assert s["median_ms"] == 2.0
        assert s["min_ms"] == 1.0 and s["max_ms"] == 3.0
        assert s["iqr_ms"] == 2.0  # spread fallback below 4 samples

    def test_iqr_with_enough_samples(self):
        s = wall_stats([i / 1e3 for i in (1, 2, 3, 4, 5, 6, 7, 8)])
        assert s["repeats"] == 8
        assert 0 < s["iqr_ms"] < s["max_ms"] - s["min_ms"] + 1e-9


def _bench(fn, **kwargs):
    defaults = dict(name="t", group="fast", fn=fn)
    defaults.update(kwargs)
    return Benchmark(**defaults)


def test_run_benchmark_counts_calls():
    calls = []

    def fn():
        calls.append(1)
        return {"ok": True}

    result = run_benchmark(_bench(fn), repeat=3, warmup=1)
    # 1 warmup + 3 timed + 1 traced work pass
    assert len(calls) == 5
    assert result.ok and result.payload == {"ok": True}
    assert result.wall["repeats"] == 3


def test_repeat_cap_and_no_warmup_for_single_shot():
    calls = []

    def fn():
        calls.append(1)

    run_benchmark(_bench(fn, repeat=1, profile=False), repeat=5, warmup=2)
    assert len(calls) == 1  # cap wins; single-shot skips warmup


def test_traced_pass_collects_work_counters():
    def fn():
        record_work("toy", visits=7)
        return None

    result = run_benchmark(_bench(fn), repeat=1)
    assert result.counters == {"work.toy.visits": 7}


def test_profile_false_skips_counters():
    def fn():
        record_work("toy", visits=7)

    result = run_benchmark(_bench(fn, profile=False), repeat=1)
    assert result.counters == {}


def test_error_is_captured_not_raised():
    def fn():
        raise RuntimeError("boom")

    result = run_benchmark(_bench(fn), repeat=2)
    assert not result.ok
    assert "boom" in result.error
    assert result.as_dict()["error"] == result.error


def test_unserializable_payload_degrades_to_repr():
    def fn():
        return object()

    result = run_benchmark(_bench(fn, profile=False), repeat=1)
    assert isinstance(result.as_dict()["payload"], str)


def test_run_suite_record_shape():
    record = run_suite(
        [_bench(lambda: {"x": 1}, name="a", profile=False)],
        repeat=2,
        group="fast",
    )
    assert record["schema"] == RECORD_SCHEMA
    assert record["group"] == "fast"
    assert record["env"]["python"] and record["env"]["cpu_count"] >= 1
    assert record["results"]["a"]["wall"]["repeats"] == 2
    assert record["results"]["a"]["error"] is None
