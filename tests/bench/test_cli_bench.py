"""CLI contract of ``repro bench`` and ``repro profile``."""

import json

import pytest

import repro.bench
from repro.bench import registry as reg
from repro.cli import main
from repro.obs.prof import record_work
from tests.conftest import FIGURE2_SOURCE


@pytest.fixture()
def fake_suite(monkeypatch):
    """A private registry with one deterministic benchmark; discovery
    disabled so the real benchmarks don't leak in."""
    monkeypatch.setattr(reg, "_REGISTRY", {})
    monkeypatch.setattr(repro.bench, "discover", lambda package="benchmarks": 1)

    @reg.register("toy", group="fast", summary="deterministic toy")
    def toy():
        record_work("toy", visits=10)
        return {"answer": 42}

    return reg


def _bench(tmp_path, *extra):
    history = tmp_path / "hist.jsonl"
    return main(["bench", "--group", "fast", "--repeat", "2",
                 "--history", str(history), *extra]), history


def test_bench_runs_and_appends(fake_suite, tmp_path, capsys):
    code, history = _bench(tmp_path)
    assert code == 0
    out = capsys.readouterr().out
    assert "toy" in out and "appended record #1" in out
    records = repro.bench.load_history(history)
    assert len(records) == 1
    assert records[0]["results"]["toy"]["counters"] == {"work.toy.visits": 10}


def test_bench_check_passes_on_identical_reruns(fake_suite, tmp_path, capsys):
    code1, history = _bench(tmp_path)
    code2, _ = _bench(tmp_path, "--check")
    assert (code1, code2) == (0, 0)
    assert "no regressions" in capsys.readouterr().out
    assert len(repro.bench.load_history(history)) == 2


def test_bench_check_vacuous_without_baseline(fake_suite, tmp_path, capsys):
    code, _ = _bench(tmp_path, "--check")
    assert code == 0
    assert "vacuously" in capsys.readouterr().out


def test_bench_check_fails_on_inflated_counters(fake_suite, tmp_path, capsys):
    code1, history = _bench(tmp_path)
    assert code1 == 0
    # Doctor a baseline that claims the work used to be half: the
    # current (unchanged) run then looks 2x inflated and must fail.
    baseline = repro.bench.load_history(history)[0]
    baseline["results"]["toy"]["counters"]["work.toy.visits"] = 5
    doctored = tmp_path / "baseline.json"
    doctored.write_text(json.dumps(baseline))
    code2, _ = _bench(tmp_path, "--check", "--baseline", str(doctored))
    assert code2 == 1
    assert "[counter] toy" in capsys.readouterr().out


def test_bench_errors_exit_nonzero(fake_suite, tmp_path, capsys):
    @reg.register("broken", group="fast")
    def broken():
        raise RuntimeError("kaput")

    code, _ = _bench(tmp_path)
    assert code == 1
    err = capsys.readouterr().err
    assert "broken" in err and "kaput" in err


def test_bench_list_and_unknown_name(fake_suite, tmp_path, capsys):
    assert main(["bench", "--list"]) == 0
    assert "toy" in capsys.readouterr().out
    assert main(["bench", "nope", "--history",
                 str(tmp_path / "h.jsonl")]) == 3


def test_bench_json_record(fake_suite, tmp_path):
    out = tmp_path / "record.json"
    code, _ = _bench(tmp_path, "--json", str(out))
    assert code == 0
    record = json.loads(out.read_text())
    assert record["results"]["toy"]["payload"] == {"answer": 42}


def test_profile_command_tables(tmp_path, capsys):
    source = tmp_path / "p.par"
    source.write_text(FIGURE2_SOURCE)
    out = tmp_path / "profile.json"
    assert main(["profile", str(source), "--json", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "deterministic work counters" in printed
    assert "constprop" in printed and "total work" in printed
    profile = json.loads(out.read_text())
    assert profile["total_work"] == sum(profile["work"].values())
    assert any(k.startswith("work.cssa.") for k in profile["work"])


def test_profile_flame_trace_export(tmp_path):
    source = tmp_path / "p.par"
    source.write_text(FIGURE2_SOURCE)
    flame = tmp_path / "out.flame"
    assert main(["profile", str(source), "--trace", str(flame),
                 "--trace-format", "flame"]) == 0
    lines = flame.read_text().strip().splitlines()
    assert lines
    for line in lines:
        stack, weight = line.rsplit(" ", 1)
        assert stack and int(weight) >= 0
    assert any(";" in line for line in lines)  # nested stacks present
