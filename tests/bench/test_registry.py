"""Registry semantics: register, select, discover."""

import pytest

from repro.bench import registry as reg


@pytest.fixture()
def fresh(monkeypatch):
    """An empty registry, restored afterwards."""
    monkeypatch.setattr(reg, "_REGISTRY", {})
    return reg


def test_register_keeps_fn_callable(fresh):
    @fresh.register("a", group="fast", summary="s")
    def a():
        return 42

    assert a() == 42  # decorator returns the function unchanged
    bench = fresh.registered()["a"]
    assert bench.fn is a and bench.group == "fast" and bench.summary == "s"
    assert a.benchmark is bench


def test_register_defaults_summary_from_docstring(fresh):
    @fresh.register("a")
    def a():
        """First line.

        More.
        """

    assert fresh.registered()["a"].summary == "First line."


def test_duplicate_name_rejected(fresh):
    @fresh.register("a")
    def a():
        pass

    with pytest.raises(ValueError, match="already registered"):
        @fresh.register("a")
        def b():
            pass


def test_reregistering_same_fn_is_idempotent(fresh):
    def a():
        pass

    fresh.register("a")(a)
    fresh.register("a")(a)  # module re-imported under the same name
    assert list(fresh.registered()) == ["a"]


def test_select_by_group_and_name(fresh):
    for name, group in (("b", "fast"), ("a", "fast"), ("c", "slow")):
        fresh.register(name, group=group)(lambda: None)
    assert [b.name for b in fresh.select()] == ["a", "b", "c"]  # sorted
    assert [b.name for b in fresh.select(group="fast")] == ["a", "b"]
    assert [b.name for b in fresh.select(names=["c"])] == ["c"]
    with pytest.raises(KeyError, match="unknown benchmark"):
        fresh.select(names=["nope"])


def test_discover_missing_package_is_zero(fresh):
    assert fresh.discover("no_such_package_xyz") == 0


def test_discover_finds_the_real_suite():
    # Uses the real registry: importing benchmarks.* registers there.
    modules = reg.discover()
    assert modules >= 14
    names = set(reg.registered())
    assert {
        "figure1", "figure2", "figure3", "figure4", "figure5",
        "lvn", "events", "diagnostics", "pi_sweep", "opt_sweep",
        "scalability", "vm", "licm_runtime", "session_cache",
        "trace_overhead",
    } <= names
    assert len(names) >= 15
    fast = {b.name for b in reg.select(group="fast")}
    assert "figure2" in fast and "trace_overhead" not in fast
    # Timing-sensitive benchmarks opt out of the traced work pass.
    assert not reg.registered()["trace_overhead"].profile
    assert not reg.registered()["session_cache"].profile
