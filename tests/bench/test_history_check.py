"""History persistence and the regression gate."""

import json

from repro.bench.check import Regression, compare_records, format_regressions
from repro.bench.history import append_record, load_history, previous_record


def _record(group="fast", counters=None, wall=None, error=None, name="b"):
    return {
        "schema": "repro.bench/record/v1",
        "group": group,
        "results": {
            name: {
                "group": group,
                "counters": counters if counters is not None else {},
                "wall": wall if wall is not None else {},
                "payload": None,
                "error": error,
            }
        },
    }


class TestHistory:
    def test_append_load_round_trip(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_record(_record(), path)
        append_record(_record(group="slow"), path)
        records = load_history(path)
        assert [r["group"] for r in records] == ["fast", "slow"]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_corrupt_lines_skipped(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_record(_record(), path)
        with open(path, "a") as handle:
            handle.write('{"truncated": \n')  # interrupted writer
        append_record(_record(group="slow"), path)
        assert [r["group"] for r in load_history(path)] == ["fast", "slow"]

    def test_previous_record_filters_by_group(self, tmp_path):
        records = [_record("fast"), _record("slow"), _record("fast")]
        assert previous_record(records, "slow") is records[1]
        assert previous_record(records, "fast") is records[2]
        assert previous_record(records) is records[2]
        assert previous_record(records, "other") is None


class TestGate:
    def test_identical_records_pass(self):
        rec = _record(counters={"work.p.ops": 100}, wall={"median_ms": 2.0})
        assert compare_records(rec, json.loads(json.dumps(rec))) == []

    def test_doubled_work_counter_fails(self):
        base = _record(counters={"work.p.ops": 100})
        cur = _record(counters={"work.p.ops": 200})
        regs = compare_records(cur, base)
        assert len(regs) == 1 and regs[0].kind == "counter"
        assert "work.p.ops" in regs[0].detail

    def test_growth_within_tolerance_passes(self):
        base = _record(counters={"work.p.ops": 100})
        cur = _record(counters={"work.p.ops": 104})
        assert compare_records(cur, base) == []

    def test_counter_shrink_and_new_counters_pass(self):
        base = _record(counters={"work.p.ops": 100, "work.q.ops": 5})
        cur = _record(counters={"work.p.ops": 50, "work.r.ops": 999})
        assert compare_records(cur, base) == []

    def test_wall_needs_both_relative_and_iqr_excess(self):
        base = _record(wall={"median_ms": 10.0, "iqr_ms": 1.0})
        # +40% — below the 50% relative bar even though beyond 3 IQR
        ok = _record(wall={"median_ms": 14.0, "iqr_ms": 1.0})
        assert compare_records(ok, base) == []
        # +100% and beyond 3 IQR — fails
        bad = _record(wall={"median_ms": 20.0, "iqr_ms": 1.0})
        regs = compare_records(bad, base)
        assert len(regs) == 1 and regs[0].kind == "wall"
        # +100% but the noise band is huge — passes (3*IQR dominates)
        noisy_base = _record(wall={"median_ms": 10.0, "iqr_ms": 5.0})
        assert compare_records(bad, noisy_base) == []

    def test_missing_benchmark_flagged(self):
        base = _record(name="gone")
        cur = {"results": {}}
        regs = compare_records(cur, base)
        assert len(regs) == 1 and regs[0].kind == "missing"

    def test_errored_current_flagged_errored_baseline_ignored(self):
        base_err = _record(error="old failure")
        assert compare_records(_record(), base_err) == []
        cur_err = _record(error="boom")
        regs = compare_records(cur_err, _record())
        assert len(regs) == 1 and regs[0].kind == "error"

    def test_format(self):
        assert "no regressions" in format_regressions([])
        text = format_regressions(
            [Regression(bench="b", kind="counter", detail="d")]
        )
        assert "1 regression" in text and "[counter] b: d" in text
