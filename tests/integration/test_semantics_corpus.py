"""A corpus of small programs with hand-computed exhaustive outcome sets.

Each entry asserts (a) the explorer enumerates exactly the expected
behaviours and (b) the full optimization pipeline preserves them.  This
is the broad safety net behind the per-pass unit tests.
"""

import pytest

from repro.opt.pipeline import optimize
from repro.verify import exhaustive_equivalence
from repro.vm.explore import explore
from tests.conftest import build


def prints(*rows):
    """Build an outcome set of print-only behaviours."""
    return {tuple(("print", tuple(row)) for row in rows_) for rows_ in rows}


CORPUS = {
    "sequential arithmetic": (
        "a = 3; b = a * a - 2; print(b);",
        {(("print", (7,)),)},
    ),
    "if else taken": (
        "a = 1; if (a == 1) { print(10); } else { print(20); }",
        {(("print", (10,)),)},
    ),
    "bounded loop": (
        "i = 0; while (i < 4) { i = i + 2; } print(i);",
        {(("print", (4,)),)},
    ),
    "unlocked store race": (
        "cobegin begin v = 1; end begin v = 2; end coend print(v);",
        {(("print", (1,)),), (("print", (2,)),)},
    ),
    "locked read-modify-write": (
        """
        v = 0;
        cobegin
        begin lock(L); t = v; v = t + 1; unlock(L); end
        begin lock(L); u = v; v = u + 1; unlock(L); end
        coend
        print(v);
        """,
        {(("print", (2,)),)},
    ),
    "event pipeline": (
        """
        cobegin
        begin x = 7; set(go); end
        begin wait(go); print(x); end
        coend
        """,
        {(("print", (7,)),)},
    ),
    "reader may see either": (
        """
        v = 0;
        cobegin
        begin v = 5; end
        begin r = v; end
        coend
        print(r);
        """,
        {(("print", (0,)),), (("print", (5,)),)},
    ),
    "three-way print interleaving": (
        """
        cobegin
        begin print(1); end
        begin print(2); end
        begin print(3); end
        coend
        """,
        {
            tuple(("print", (v,)) for v in perm)
            for perm in (
                (1, 2, 3), (1, 3, 2), (2, 1, 3),
                (2, 3, 1), (3, 1, 2), (3, 2, 1),
            )
        },
    ),
    "nested cobegin join": (
        """
        cobegin
        begin
            cobegin begin a = 1; end begin b = 2; end coend
            c = a + b;
        end
        begin d = 4; end
        coend
        print(c, d);
        """,
        {(("print", (3, 4)),)},
    ),
    "mutex hides intermediate value": (
        """
        v = 0;
        cobegin
        begin lock(L); v = 1; v = 2; unlock(L); end
        begin lock(L); r = v; unlock(L); end
        coend
        print(r);
        """,
        {(("print", (0,)),), (("print", (2,)),)},  # never 1
    ),
    "barrier phase visibility": (
        """
        cobegin
        begin x = 1; barrier(B); r = y; end
        begin y = 2; barrier(B); s = x; end
        coend
        print(r, s);
        """,
        {(("print", (2, 1)),)},
    ),
    "doall sum under lock": (
        """
        s = 0;
        doall i = 1 to 3 { lock(A); s = s + i; unlock(A); }
        print(s);
        """,
        {(("print", (6,)),)},
    ),
    "call events observable": (
        "cobegin begin f(1); end begin g(2); end coend",
        {
            (("call", "f", (1,)), ("call", "g", (2,))),
            (("call", "g", (2,)), ("call", "f", (1,))),
        },
    ),
    "division truncation": (
        "print(7 / -2, 7 % -2);",
        {(("print", (-3, 1)),)},
    ),
    "deadlock both orders": (
        """
        cobegin
        begin lock(A); lock(B); unlock(B); unlock(A); end
        begin lock(B); lock(A); unlock(A); unlock(B); end
        coend
        print(1);
        """,
        None,  # checked separately: both success and deadlock possible
    ),
}


@pytest.mark.parametrize("name", sorted(k for k, v in CORPUS.items() if v[1]))
def test_exact_outcomes(name):
    source, expected = CORPUS[name]
    result = explore(build(source))
    assert result.complete
    assert result.outcomes == expected, (
        f"{name}: {sorted(result.outcomes)} != {sorted(expected)}"
    )


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_pipeline_preserves_corpus(name):
    source, _expected = CORPUS[name]
    program = build(source)
    report = optimize(program)
    res = exhaustive_equivalence(report.baseline, program)
    assert res.complete
    # LICM may delete *empty* lock pairs, which can only remove
    # deadlocking behaviours (see EquivalenceResult docs); the
    # "deadlock both orders" entry exercises exactly that.
    assert res.equal_modulo_deadlock_removal, f"{name}: {res.explain()}"
    if name != "deadlock both orders":
        assert res.equal, f"{name}: {res.explain()}"


def test_deadlock_case_shape():
    source, _ = CORPUS["deadlock both orders"]
    result = explore(build(source))
    assert result.can_deadlock
    assert (("print", (1,)),) in result.outcomes
