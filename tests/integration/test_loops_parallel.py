"""Loops interacting with concurrency — under-exercised in the paper's
figures, so covered here end to end."""

from repro.cssame import build_cssame
from repro.ir.printer import format_ir
from repro.ir.stmts import Phi, Pi
from repro.ir.structured import WhileRegion, iter_statements
from repro.opt.pipeline import optimize
from repro.verify import exhaustive_equivalence
from repro.vm.explore import explore
from tests.conftest import build


class TestLoopForms:
    def test_shared_loop_condition_gets_header_pi(self):
        program = build(
            """
            stop = 0;
            cobegin
            W: begin
                private i = 0;
                while (i < 2 - stop) { i = i + 1; }
                r = i;
            end
            K: begin stop = 1; end
            coend
            print(r);
            """
        )
        build_cssame(program)
        region = next(
            item
            for item, _ctx in _regions(program)
            if isinstance(item, WhileRegion)
        )
        kinds = [type(s).__name__ for s in region.header_phis]
        assert "Phi" in kinds  # loop-carried i
        assert "Pi" in kinds   # shared `stop` read per iteration

    def test_locked_loop_body_prunes(self):
        program = build(
            """
            v = 0;
            cobegin
            A: begin
                private i = 0;
                while (i < 2) {
                    lock(L);
                    v = 1;
                    x = v;
                    unlock(L);
                    i = i + 1;
                }
            end
            B: begin lock(L); v = 9; unlock(L); end
            coend
            print(x);
            """
        )
        form = build_cssame(program)
        # x = v is dominated by v = 1 inside the body: Theorem 2 removes
        # B's definition from its π.
        assert form.rewrite_stats.args_removed >= 1

    def test_loop_pipeline_equivalence(self):
        program = build(
            """
            total = 0;
            cobegin
            A: begin
                private i = 0;
                while (i < 2) {
                    lock(L); total = total + 1; unlock(L);
                    i = i + 1;
                }
            end
            B: begin lock(L); total = total + 10; unlock(L); end
            coend
            print(total);
            """
        )
        report = optimize(program)
        res = exhaustive_equivalence(report.baseline, program)
        assert res.complete and res.equal, res.explain()
        # Deterministic sum regardless of schedule.
        assert explore(program).outcomes == {(("print", (12,)),)}

    def test_spin_wait_loop(self):
        # A classic flag spin loop — terminating because the explorer's
        # schedules always eventually run the setter.
        program = build(
            """
            flag = 0;
            data = 0;
            cobegin
            P: begin data = 42; flag = 1; end
            C: begin
                while (flag == 0) { skip; }
                out = data;
            end
            coend
            print(out);
            """
        )
        res = explore(program, max_states=50_000)
        assert res.complete
        printable = {o[-1][1][0] for o in res.outcomes if o[-1][0] == "print"}
        # Without ordering guarantees the consumer may exit the spin
        # only after flag=1, and data=42 precedes flag=1 in P: always 42.
        assert printable == {42}

    def test_loop_carried_shared_updates(self):
        program = build(
            """
            acc = 0;
            cobegin
            A: begin
                private i = 0;
                while (i < 3) {
                    lock(M); acc = acc + i; unlock(M);
                    i = i + 1;
                }
            end
            B: begin
                private j = 0;
                while (j < 2) {
                    lock(M); acc = acc + 10; unlock(M);
                    j = j + 1;
                }
            end
            coend
            print(acc);
            """
        )
        report = optimize(program)
        res = exhaustive_equivalence(report.baseline, program, max_states=300_000)
        if res.complete:
            assert res.equal, res.explain()
        assert explore(program, max_states=300_000).outcomes == {
            (("print", (23,)),)
        }


def _regions(program):
    """Yield structured items (regions) with context."""
    from repro.ir.structured import Body, CobeginRegion, IfRegion

    def walk(body):
        for item in body.items:
            if isinstance(item, WhileRegion):
                yield item, None
                yield from walk(item.body)
            elif isinstance(item, IfRegion):
                yield from walk(item.then_body)
                yield from walk(item.else_body)
            elif isinstance(item, CobeginRegion):
                for thread in item.threads:
                    yield from walk(thread.body)

    yield from walk(program.body)
