"""The job-queue server case study, locked as an integration test."""

from examples.case_study_server import SERVER
from repro.api import diagnose_source, front_end
from repro.cssame import build_cssame
from repro.ir.structured import clone_program
from repro.opt.pipeline import optimize
from repro.verify import exhaustive_equivalence
from repro.vm.explore import explore


class TestServerCaseStudy:
    def test_diagnostics_clean(self):
        warnings, races = diagnose_source(SERVER)
        assert warnings == []
        assert races == []  # barrier/event ordering serializes done0/1

    def test_four_mutex_bodies(self):
        program = front_end(SERVER)
        form = build_cssame(program)
        assert len(form.mutex_bodies()) == 4

    def test_pipeline_verified(self):
        program = front_end(SERVER)
        report = optimize(program)
        res = exhaustive_equivalence(
            report.baseline, program, max_states=400_000
        )
        assert res.complete
        assert res.equal, res.explain()

    def test_result_value_set(self):
        program = front_end(SERVER)
        res = explore(program, max_states=400_000)
        assert res.complete
        assert not res.can_deadlock
        finals = {o[-1][1] for o in res.outcomes}
        # Two schedules: worker0 first (drains to 0, result 21) or
        # worker1 first (worker0's unconditional queued = 1 sticks,
        # result 20).  Both keep the fixed overheads 14 + 4.
        assert finals == {(21, 0), (20, 1)}
