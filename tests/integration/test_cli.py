"""Command-line driver tests."""

import pytest

from repro.cli import main
from tests.conftest import FIGURE2_SOURCE


@pytest.fixture
def fig2_file(tmp_path):
    path = tmp_path / "fig2.par"
    path.write_text(FIGURE2_SOURCE)
    return str(path)


class TestAnalyze:
    def test_cssame_listing(self, fig2_file, capsys):
        assert main(["analyze", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "tb0 = pi(b0, b1);" in out
        assert "// pi terms: 1" in out
        assert "// mutex bodies: 2" in out

    def test_cssa_mode(self, fig2_file, capsys):
        assert main(["analyze", "--cssa", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "// pi terms: 5" in out


class TestOptimize:
    def test_final_listing(self, fig2_file, capsys):
        assert main(["optimize", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "b1 = 8;" in out
        assert "// constants:" in out

    def test_phases(self, fig2_file, capsys):
        assert main(["optimize", "--phases", "--keep-prints", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "// ---- after constprop ----" in out
        assert "x0 = 13;" in out


class TestDiagnose:
    def test_clean(self, fig2_file, capsys):
        assert main(["diagnose", fig2_file]) == 0
        assert "no synchronization problems" in capsys.readouterr().out

    def test_racy(self, tmp_path, capsys):
        path = tmp_path / "racy.par"
        path.write_text(
            "cobegin begin v = 1; end begin v = 2; end coend print(v);"
        )
        assert main(["diagnose", str(path)]) == 1
        assert "race:" in capsys.readouterr().out


class TestRun:
    def test_prints_output(self, fig2_file, capsys):
        assert main(["run", "--seed", "3", fig2_file]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0] == "13"

    def test_deadlock_exit_code(self, tmp_path, capsys):
        path = tmp_path / "dead.par"
        path.write_text("wait(never);")
        assert main(["run", str(path)]) == 2

    def test_stats(self, fig2_file, capsys):
        assert main(["run", "--stats", fig2_file]) == 0
        err = capsys.readouterr().err
        assert "// steps:" in err
        assert "lock L" in err


class TestExplore:
    def test_outcome_enumeration(self, fig2_file, capsys):
        assert main(["explore", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "print 13 | print 6" in out
        assert "print 13 | print 14" in out
        assert "// 2 behaviour(s)" in out

    def test_deadlock_detection(self, tmp_path, capsys):
        path = tmp_path / "dead.par"
        path.write_text(
            """
            cobegin
            begin lock(A); lock(B); unlock(B); unlock(A); end
            begin lock(B); lock(A); unlock(A); unlock(B); end
            coend
            """
        )
        assert main(["explore", str(path)]) == 2
        assert "DEADLOCK" in capsys.readouterr().out

    def test_optimized_exploration(self, fig2_file, capsys):
        assert main(["explore", "--optimize", fig2_file]) == 0
        out = capsys.readouterr().out
        assert "// 2 behaviour(s)" in out


class TestDot:
    def test_dot_output(self, fig2_file, capsys):
        assert main(["dot", fig2_file]) == 0
        assert capsys.readouterr().out.startswith("digraph")


class TestWitness:
    def test_witness_for_lost_update(self, tmp_path, capsys):
        path = tmp_path / "racy.par"
        path.write_text(
            """
            x = 0;
            cobegin
            begin t1 = x; x = t1 + 1; end
            begin t2 = x; x = t2 + 1; end
            coend
            print(x);
            """
        )
        assert main(["witness", str(path), "1"]) == 0
        captured = capsys.readouterr()
        assert "schedule (thread ids in step order):" in captured.out
        assert "replayed:\n1\n" in captured.out  # the lost update, replayed
        assert "DEADLOCK" not in captured.err

    def test_witness_deadlock(self, tmp_path, capsys):
        path = tmp_path / "dead.par"
        path.write_text(
            """
            cobegin
            begin lock(A); lock(B); unlock(B); unlock(A); end
            begin lock(B); lock(A); unlock(A); unlock(B); end
            coend
            """
        )
        assert main(["witness", "--deadlock", str(path)]) == 0
        captured = capsys.readouterr()
        assert "replayed:" in captured.out
        assert "DEADLOCK" in captured.err

    def test_witness_impossible(self, fig2_file, capsys):
        assert main(["witness", fig2_file, "999"]) == 1
        assert "no schedule" in capsys.readouterr().err


class TestErrors:
    def test_parse_error_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.par"
        path.write_text("x = ;")
        assert main(["analyze", str(path)]) == 3
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, capsys):
        assert main(["analyze", "/nonexistent/file.par"]) == 3

    def test_stdin_input(self, monkeypatch, capsys):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("print(1);"))
        assert main(["run", "-"]) == 0
        assert capsys.readouterr().out.strip() == "1"
