"""repro.report helpers."""

from repro.api import analyze_source
from repro.report import FormMetrics, critical_section_profile, measure_form, pfg_inventory
from repro.synth import licm_padding
from tests.conftest import FIGURE2_SOURCE, build


class TestMeasureForm:
    def test_non_ssa_program_counts(self):
        program = build("a = 1; b = a + 2; print(b);")
        m = measure_form(program)
        assert m.pi_terms == 0 and m.phi_terms == 0
        assert m.assignments == 2
        assert m.statements == 3

    def test_as_dict_roundtrip(self):
        program = build("a = 1;")
        d = measure_form(program).as_dict()
        assert set(d) == {
            "pi_terms", "pi_args", "phi_terms", "phi_args",
            "assignments", "statements",
        }

    def test_counts_header_phis(self):
        program = build("i = 0; while (i < 3) { i = i + 1; } print(i);")
        from repro.cssame import build_cssame

        build_cssame(program)
        m = measure_form(program)
        assert m.phi_terms == 1
        assert m.phi_args == 2


class TestInventory:
    def test_totals_consistent(self):
        form = analyze_source(FIGURE2_SOURCE)
        inv = pfg_inventory(form)
        per_kind = sum(v for k, v in inv.items()
                       if k.startswith("nodes_") and k != "nodes_total")
        assert per_kind == inv["nodes_total"]


class TestProfile:
    def test_profile_keys_and_determinism(self):
        program = licm_padding(2, 2)
        a = critical_section_profile(program, seeds=range(4))
        b = critical_section_profile(program, seeds=range(4))
        assert a == b
        assert set(a) == {
            "avg_lock_held_steps", "avg_lock_blocked_steps",
            "avg_lock_acquisitions", "avg_steps",
        }
        assert a["avg_lock_acquisitions"] == 2.0  # one section per thread

    def test_lock_free_program_zero_profile(self):
        program = build("x = 1; print(x);")
        profile = critical_section_profile(program, seeds=range(2))
        assert profile["avg_lock_held_steps"] == 0.0
        assert profile["avg_steps"] > 0
