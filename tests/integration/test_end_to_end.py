"""End-to-end journeys through the public API."""

from repro import api
from repro.ir.structured import count_statements
from repro.report import critical_section_profile, measure_form, pfg_inventory
from repro.synth import bank_accounts, licm_padding
from repro.verify import deterministic_output, exhaustive_equivalence
from repro.vm.machine import run_random
from tests.conftest import FIGURE2_SOURCE


class TestApiJourneys:
    def test_front_end(self):
        program = api.front_end("x = 1; print(x);")
        assert count_statements(program) == 2

    def test_analyze_source(self):
        form = api.analyze_source(FIGURE2_SOURCE)
        assert form.rewrite_stats.pis_after == 1
        assert form.shared == {"a", "b"}

    def test_optimize_source_runs_and_verifies(self):
        report = api.optimize_source(FIGURE2_SOURCE)
        res = exhaustive_equivalence(report.baseline, report.program)
        assert res.equal
        assert "final" in report.listings

    def test_diagnose_source(self):
        warnings, races = api.diagnose_source(
            "cobegin begin v = 1; end begin v = 2; end coend print(v);"
        )
        assert warnings == []
        assert races

    def test_listing_helper(self):
        program = api.front_end("x = 1;")
        assert api.listing(program) == "x = 1;\n"


class TestRealisticWorkloads:
    def test_bank_optimized_still_conserves(self):
        from repro.opt.pipeline import optimize

        program = bank_accounts(n_threads=3, n_transfers=3)
        optimize(program)
        for seed in range(8):
            ex = run_random(program, seed=seed)
            b0, b1 = ex.printed[-1]
            assert b0 + b1 == 200

    def test_licm_reduces_lock_held_time(self):
        from repro.opt.pipeline import optimize
        from repro.ir.structured import clone_program

        program = licm_padding(n_threads=2, n_private_stmts=5)
        before = clone_program(program)
        report = optimize(program, fold_output_uses=False)
        assert report.licm.total_moved > 0
        prof_before = critical_section_profile(before, seeds=range(12))
        prof_after = critical_section_profile(program, seeds=range(12))
        assert (
            prof_after["avg_lock_held_steps"]
            < prof_before["avg_lock_held_steps"]
        )

    def test_deterministic_program_output_unchanged(self):
        from repro.opt.pipeline import optimize

        src = """
        total = 0;
        cobegin
        begin lock(L); total = total + 10; unlock(L); end
        begin lock(L); total = total + 20; unlock(L); end
        begin lock(L); total = total + 30; unlock(L); end
        coend
        print(total);
        """
        original = api.front_end(src)
        expected = deterministic_output(original)
        optimized = api.front_end(src)
        optimize(optimized)
        assert deterministic_output(optimized) == expected


class TestReportHelpers:
    def test_measure_form(self):
        form = api.analyze_source(FIGURE2_SOURCE, prune=False)
        m = measure_form(form.program)
        assert m.pi_terms == 5 and m.phi_terms == 2

    def test_pfg_inventory_totals(self):
        form = api.analyze_source(FIGURE2_SOURCE)
        inv = pfg_inventory(form)
        assert inv["nodes_total"] == len(form.graph.blocks)
        assert inv["edges_control"] == sum(
            len(b.succs) for b in form.graph.blocks
        )
