"""Property tests for the CSSAME rewrite itself (Theorems 1–2).

The central soundness property: pruning π arguments with Algorithm A.3
must not change the program's behaviour.  We verify it semantically —
the CSSA form and the CSSAME form of the same program have *identical*
outcome sets over every schedule — and structurally (the rewrite only
ever removes arguments).
"""

from hypothesis import given, settings, strategies as st

from repro.cssame import build_cssame
from repro.ir.stmts import Pi
from repro.ir.structured import iter_statements
from repro.synth import GeneratorConfig, generate_program
from repro.verify import exhaustive_equivalence

_small_configs = st.builds(
    GeneratorConfig,
    seed=st.integers(0, 5_000),
    n_threads=st.just(2),
    stmts_per_thread=st.integers(1, 4),
    n_shared=st.integers(1, 2),
    n_locks=st.integers(1, 2),
    p_if=st.floats(0.0, 0.3),
    p_critical=st.floats(0.3, 0.9),
)


def pi_index(program):
    return {
        stmt.uid: {v.ssa_name for v in stmt.conflicts}
        for stmt, _ in iter_statements(program)
        if isinstance(stmt, Pi)
    }


@given(_small_configs)
@settings(max_examples=30, deadline=None)
def test_rewrite_only_removes_arguments(config):
    cssa_program = generate_program(config)
    build_cssame(cssa_program, prune=False)
    before = pi_index(cssa_program)

    # Same seed → same program; now with pruning.
    cssame_program = generate_program(config)
    form = build_cssame(cssame_program, prune=True)
    after = pi_index(cssame_program)

    # π terms can only disappear, and surviving terms can only have
    # shrunk (compare by multiset of conflict sets since uids differ).
    assert len(after) <= len(before)
    stats = form.rewrite_stats
    assert stats.args_after <= stats.args_before
    assert stats.pis_after == len(after)


@given(_small_configs)
@settings(max_examples=25, deadline=None)
def test_cssa_and_cssame_behaviourally_identical(config):
    """Theorems 1 and 2, checked over *every* schedule."""
    cssa_program = generate_program(config)
    build_cssame(cssa_program, prune=False)

    cssame_program = generate_program(config)
    build_cssame(cssame_program, prune=True)

    res = exhaustive_equivalence(
        cssa_program, cssame_program, max_states=150_000
    )
    if not res.complete:
        return  # state budget exceeded; skip silently (rare)
    assert res.equal, res.explain()


@given(_small_configs)
@settings(max_examples=25, deadline=None)
def test_deleted_pis_leave_consistent_chains(config):
    program = generate_program(config)
    build_cssame(program, prune=True)
    live = {id(s) for s, _ in iter_statements(program)}
    from repro.ir.stmts import IRStmt

    for stmt, _ in iter_statements(program):
        for use in stmt.uses():
            if isinstance(use.def_site, IRStmt):
                assert id(use.def_site) in live
