"""Property tests: the dynamic happens-before detector vs the static
lockset analysis and the exhaustive explorer, on generated programs.

The load-bearing invariant is *soundness containment*: the static
report is a may-analysis, so every variable the dynamic detector flags
must also appear in the static report.  (The converse is false — a
static race can be infeasible or involve only observable-event
arguments — and a *singleton print outcome* does not imply race
freedom either: two atomic ``x = x + 1`` statements race while always
printing 2.  The explorer-consistency property is therefore stated on
``race_free`` generated programs.)
"""

from hypothesis import given, settings, strategies as st

from repro.cfg.builder import build_flow_graph
from repro.dynamic import HBTracker
from repro.mutex.identify import identify_mutex_structures
from repro.mutex.races import detect_races
from repro.synth import GeneratorConfig, generate_program
from repro.vm.compile import compile_program
from repro.vm.explore import explore
from repro.vm.machine import VirtualMachine

_configs = st.builds(
    GeneratorConfig,
    seed=st.integers(0, 5_000),
    n_threads=st.integers(1, 3),
    stmts_per_thread=st.integers(1, 4),
    n_shared=st.integers(1, 2),
    n_locks=st.integers(0, 2),
    p_if=st.floats(0.0, 0.3),
    p_critical=st.floats(0.0, 0.8),
)


def _dynamic_race_vars(program, seeds=range(8)) -> set[str]:
    compiled = compile_program(program)
    vars_seen: set[str] = set()
    for seed in seeds:
        hb = HBTracker(compiled)
        VirtualMachine(compiled, seed=seed, hb=hb).run(raise_on_deadlock=False)
        vars_seen |= hb.race_vars()
    return vars_seen


@given(_configs)
@settings(max_examples=20, deadline=None)
def test_dynamic_races_subset_of_static(config):
    """Soundness containment: dynamic ⊆ static, per variable — exactly
    the invariant ``repro audit`` turns into a hard failure
    (``dynamic_only``) when violated."""
    program = generate_program(config)
    graph = build_flow_graph(program)
    static_vars = {
        r.var for r in detect_races(graph, identify_mutex_structures(graph))
    }
    assert _dynamic_race_vars(program) <= static_vars


@given(_configs)
@settings(max_examples=15, deadline=None)
def test_race_free_programs_have_no_dynamic_races(config):
    """``race_free`` generation protects every shared access with a
    per-variable lock: the detector must stay silent on every seed."""
    config.race_free = True
    config.n_locks = max(config.n_locks, 1)
    program = generate_program(config)
    assert _dynamic_race_vars(program, seeds=range(12)) == set()


@given(_configs)
@settings(max_examples=10, deadline=None)
def test_clock_order_consistent_with_explorer(config):
    """Vector-clock order is consistent with the explorer: on a
    statically race-free program whose exhaustive outcome set is a
    single print class, no sampled schedule may exhibit a dynamic
    race (there is nothing unordered left to observe)."""
    config.race_free = True
    config.n_locks = max(config.n_locks, 1)
    program = generate_program(config)
    result = explore(program, max_states=50_000)
    if not result.complete or result.print_classes != 1:
        return
    assert _dynamic_race_vars(program, seeds=range(12)) == set()


@given(_configs, st.integers(0, 100))
@settings(max_examples=15, deadline=None)
def test_witness_replay_reproduces_every_race(config, seed):
    """Every recorded witness, replayed on a fresh tracker, re-detects
    the same race at the same program locations."""
    program = generate_program(config)
    compiled = compile_program(program)
    hb = HBTracker(compiled)
    VirtualMachine(compiled, seed=seed, hb=hb).run(raise_on_deadlock=False)
    for race in hb.races:
        fresh = HBTracker(compiled)
        VirtualMachine(compiled, hb=fresh).replay(list(race.witness))
        assert race.pair_key() in {r.pair_key() for r in fresh.races}


@given(_configs, st.integers(0, 100))
@settings(max_examples=15, deadline=None)
def test_tracked_run_matches_untracked(config, seed):
    """Attaching a tracker never perturbs execution: same events,
    memory, and step count as the bare VM under the same seed."""
    program = generate_program(config)
    compiled = compile_program(program)
    bare = VirtualMachine(compiled, seed=seed).run(raise_on_deadlock=False)
    hb = HBTracker(compiled)
    tracked = VirtualMachine(compiled, seed=seed, hb=hb).run(
        raise_on_deadlock=False
    )
    assert tracked.events == bare.events
    assert tracked.memory == bare.memory
    assert tracked.steps == bare.steps
