"""Property tests: dominance invariants on randomly generated programs."""

from hypothesis import given, settings, strategies as st

from repro.cfg.builder import build_flow_graph
from repro.cfg.dominance import (
    compute_dominators,
    compute_postdominators,
    dominance_frontiers,
)
from repro.synth import GeneratorConfig, generate_program

_configs = st.builds(
    GeneratorConfig,
    seed=st.integers(0, 10_000),
    n_threads=st.integers(1, 3),
    stmts_per_thread=st.integers(1, 6),
    n_locks=st.integers(0, 2),
    p_if=st.floats(0.0, 0.4),
    p_while=st.floats(0.0, 0.3),
    p_critical=st.floats(0.0, 0.8),
)


@given(_configs)
@settings(max_examples=40, deadline=None)
def test_dominator_tree_invariants(config):
    graph = build_flow_graph(generate_program(config))
    dom = compute_dominators(graph)
    for block in graph.blocks:
        # Entry dominates everything; everything dominates itself.
        assert dom.dominates(graph.entry_id, block.id)
        assert dom.dominates(block.id, block.id)
        parent = dom.idom[block.id]
        if block.id == graph.entry_id:
            assert parent is None
        else:
            assert parent is not None
            assert dom.strictly_dominates(parent, block.id)
            # The idom dominates every other dominator (it is the
            # closest): every strict dominator dominates the idom.
            for other in graph.blocks:
                if other.id not in (block.id, parent) and dom.strictly_dominates(
                    other.id, block.id
                ):
                    assert dom.dominates(other.id, parent)


@given(_configs)
@settings(max_examples=40, deadline=None)
def test_postdominator_duality(config):
    graph = build_flow_graph(generate_program(config))
    pdom = compute_postdominators(graph)
    for block in graph.blocks:
        assert pdom.dominates(graph.exit_id, block.id)


@given(_configs)
@settings(max_examples=30, deadline=None)
def test_dominance_antisymmetric(config):
    graph = build_flow_graph(generate_program(config))
    dom = compute_dominators(graph)
    for a in graph.blocks:
        for b in graph.blocks:
            if a.id != b.id:
                assert not (
                    dom.dominates(a.id, b.id) and dom.dominates(b.id, a.id)
                )


@given(_configs)
@settings(max_examples=30, deadline=None)
def test_dominance_frontier_definition(config):
    """b ∈ DF(a) ⇔ a dominates a pred of b but not strictly b."""
    graph = build_flow_graph(generate_program(config))
    dom = compute_dominators(graph)
    frontiers = dominance_frontiers(graph, dom)
    for a in graph.blocks:
        expected = set()
        for b in graph.blocks:
            if any(dom.dominates(a.id, p) for p in b.preds) and not (
                dom.strictly_dominates(a.id, b.id)
            ):
                if b.preds:
                    expected.add(b.id)
        assert frontiers[a.id] == expected
