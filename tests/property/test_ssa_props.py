"""Property tests: CSSA construction invariants on random programs."""

from hypothesis import given, settings, strategies as st

from repro.cfg.builder import build_flow_graph
from repro.cssame import build_cssame
from repro.ir.stmts import IRStmt, Phi, Pi, SAssign
from repro.ir.structured import iter_statements
from repro.ssa.names import EntryDef
from repro.synth import GeneratorConfig, generate_program

_configs = st.builds(
    GeneratorConfig,
    seed=st.integers(0, 10_000),
    n_threads=st.integers(1, 3),
    stmts_per_thread=st.integers(1, 5),
    n_shared=st.integers(1, 3),
    n_locks=st.integers(0, 2),
    p_if=st.floats(0.0, 0.4),
    p_while=st.floats(0.0, 0.25),
    p_critical=st.floats(0.0, 0.8),
)


def cssame(config, prune=True):
    program = generate_program(config)
    form = build_cssame(program, prune=prune)
    return program, form


@given(_configs)
@settings(max_examples=35, deadline=None)
def test_single_assignment(config):
    program, _ = cssame(config)
    seen = set()
    for stmt, _ctx in iter_statements(program):
        name = stmt.def_name()
        if name is not None:
            key = (name, stmt.def_version())
            assert key not in seen, f"duplicate SSA def {key}"
            seen.add(key)


@given(_configs)
@settings(max_examples=35, deadline=None)
def test_every_use_has_chain(config):
    program, _ = cssame(config)
    for stmt, _ctx in iter_statements(program):
        for use in stmt.uses():
            assert use.def_site is not None
            assert isinstance(use.def_site, (IRStmt, EntryDef))
            if isinstance(use.def_site, IRStmt):
                base = use.def_site.def_name()
                assert base == use.name
                assert use.def_site.def_version() == use.version


@given(_configs)
@settings(max_examples=35, deadline=None)
def test_chains_point_into_tree(config):
    program, _ = cssame(config)
    live = {id(s) for s, _ in iter_statements(program)}
    for stmt, _ctx in iter_statements(program):
        for use in stmt.uses():
            if isinstance(use.def_site, IRStmt):
                assert id(use.def_site) in live


@given(_configs)
@settings(max_examples=35, deadline=None)
def test_def_dominates_use_block(config):
    """In (C)SSA, a definition's block dominates each use's block
    (π conflict arguments chain across threads and are exempt)."""
    from repro.cfg.dominance import compute_dominators

    program, form = cssame(config, prune=False)
    graph = build_flow_graph(program)
    dom = compute_dominators(graph)
    for stmt, _ctx in iter_statements(program):
        if isinstance(stmt, Phi):
            # φ args must dominate their *predecessor* edge, not the φ
            # itself (the back-edge argument of a loop-header φ comes
            # from below).  The pred ids refer to the original build
            # graph, so just skip φs here.
            continue
        uses = list(stmt.uses())
        if isinstance(stmt, Pi):
            uses = [stmt.control]  # conflict args are cross-thread
        for use in uses:
            site = use.def_site
            if isinstance(site, IRStmt) and graph.contains_stmt(site):
                def_block = graph.block_of(site)
                use_block = graph.block_of(stmt)
                if def_block.thread_path != use_block.thread_path:
                    # Coend trimming: a use after the coend may chain
                    # straight into the single defining thread; the CFG
                    # path through the sibling thread bypasses the def,
                    # but all threads complete before the coend, so the
                    # chain is semantically sound.
                    continue
                assert dom.dominates(def_block.id, use_block.id), (
                    f"{site.to_str()} does not dominate {stmt.to_str()}"
                )


@given(_configs)
@settings(max_examples=35, deadline=None)
def test_pi_temps_used_exactly_once(config):
    program, _ = cssame(config, prune=False)
    temp_uses: dict[str, int] = {}
    temps = set()
    for stmt, _ctx in iter_statements(program):
        if isinstance(stmt, Pi):
            temps.add(stmt.target)
        for use in stmt.uses():
            temp_uses[use.name] = temp_uses.get(use.name, 0) + 1
    for temp in temps:
        assert temp_uses.get(temp, 0) >= 1


@given(_configs)
@settings(max_examples=35, deadline=None)
def test_coend_phis_have_two_plus_args(config):
    program, _ = cssame(config)
    for stmt, _ctx in iter_statements(program):
        if isinstance(stmt, Phi):
            assert len(stmt.args) >= 2, "single-arg φ should have collapsed"


@given(_configs)
@settings(max_examples=25, deadline=None)
def test_destruct_then_rebuild_stable(config):
    from repro.ssa.destruct import destruct_ssa
    from repro.ir.printer import format_ir

    program, _ = cssame(config)
    destruct_ssa(program)
    once = format_ir(program)
    form2 = build_cssame(program)
    destruct_ssa(program)
    # A second build/destruct round must not keep growing the program
    # (π copies are re-created deterministically, then re-collapsed).
    twice = format_ir(program)
    assert twice.count("pi(") == once.count("pi(")
