"""Property tests: every optimization pass preserves the outcome set.

Equality is checked against the CSSAME-form baseline (identical
read/write granularity — see the atomicity contract in
repro.verify.equivalence); additionally the original source program must
*refine into* its CSSA form.
"""

from hypothesis import given, settings, strategies as st

from repro.ir.structured import clone_program
from repro.opt import (
    concurrent_constant_propagation,
    lock_independent_code_motion,
    parallel_dead_code_elimination,
)
from repro.opt.pipeline import optimize
from repro.cssame import build_cssame
from repro.synth import GeneratorConfig, generate_program
from repro.verify import exhaustive_equivalence, exhaustive_refinement

_configs = st.builds(
    GeneratorConfig,
    seed=st.integers(0, 5_000),
    n_threads=st.just(2),
    stmts_per_thread=st.integers(1, 4),
    n_shared=st.integers(1, 2),
    n_private=st.integers(0, 1),
    n_locks=st.integers(0, 2),
    p_if=st.floats(0.0, 0.3),
    p_critical=st.floats(0.0, 0.9),
    p_call=st.floats(0.0, 0.2),
    race_free=st.booleans(),
)

_MAX_STATES = 120_000


def _check(baseline, transformed):
    res = exhaustive_equivalence(baseline, transformed, max_states=_MAX_STATES)
    if not res.complete:
        return  # exploration budget exceeded — skip
    assert res.equal, res.explain()


@given(_configs)
@settings(max_examples=20, deadline=None)
def test_source_refines_into_cssa_form(config):
    source = generate_program(config)
    pristine = clone_program(source)
    build_cssame(source, prune=False)
    res = exhaustive_refinement(pristine, source, max_states=_MAX_STATES)
    if res.complete:
        assert res.equal, res.explain()


@given(_configs)
@settings(max_examples=20, deadline=None)
def test_constprop_preserves_outcomes(config):
    program = generate_program(config)
    form = build_cssame(program)
    baseline = clone_program(program)
    concurrent_constant_propagation(program, form.graph)
    _check(baseline, program)


@given(_configs)
@settings(max_examples=20, deadline=None)
def test_pdce_preserves_outcomes(config):
    program = generate_program(config)
    build_cssame(program)
    baseline = clone_program(program)
    parallel_dead_code_elimination(program)
    _check(baseline, program)


@given(_configs)
@settings(max_examples=20, deadline=None)
def test_licm_preserves_outcomes(config):
    program = generate_program(config)
    build_cssame(program)
    baseline = clone_program(program)
    lock_independent_code_motion(program)
    _check(baseline, program)


@given(_configs)
@settings(max_examples=20, deadline=None)
def test_full_pipeline_preserves_outcomes(config):
    program = generate_program(config)
    report = optimize(program)
    _check(report.baseline, program)


@given(_configs)
@settings(max_examples=15, deadline=None)
def test_pipeline_without_mutex_also_sound(config):
    program = generate_program(config)
    report = optimize(program, use_mutex=False)
    _check(report.baseline, program)


@given(_configs)
@settings(max_examples=20, deadline=None)
def test_lvn_preserves_outcomes(config):
    from repro.opt import local_value_numbering

    program = generate_program(config)
    build_cssame(program)
    baseline = clone_program(program)
    local_value_numbering(program)
    _check(baseline, program)


@given(_configs)
@settings(max_examples=15, deadline=None)
def test_extended_pipeline_with_lvn(config):
    program = generate_program(config)
    report = optimize(program, passes=("constprop", "lvn", "pdce", "licm"))
    _check(report.baseline, program)


@given(_configs, st.integers(1, 2))
@settings(max_examples=15, deadline=None)
def test_pipeline_sound_with_barriers(config, n_barriers):
    config.n_barriers = n_barriers
    program = generate_program(config)
    report = optimize(program)
    _check(report.baseline, program)
