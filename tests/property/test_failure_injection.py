"""Failure injection: the verification harness must *catch* unsound
transformations.

A verifier that never fails is indistinguishable from one that checks
nothing.  Each test below applies a deliberately broken "optimization"
to a program crafted to expose it and asserts that exhaustive
outcome-set comparison reports the difference.
"""

from repro.cssame import build_cssame
from repro.ir.expr import EConst, EVar
from repro.ir.stmts import Pi, SAssign
from repro.ir.structured import clone_program, iter_statements, remove_stmt
from repro.opt.licm import lock_independent_code_motion
from repro.ssa.chains import build_use_map
from repro.verify import exhaustive_equivalence
from tests.conftest import build


def cssame_with_baseline(source):
    program = build(source)
    build_cssame(program)
    return program, clone_program(program)


class TestInjectedBugs:
    def test_dropping_live_pi_argument_detected(self):
        """Unsoundly removing a reachable π conflict argument (a broken
        Algorithm A.3) changes constant propagation's verdict and the
        behaviour set."""
        program, baseline = cssame_with_baseline(
            """
            v = 1;
            cobegin
            begin x = v; end
            begin v = 2; end
            coend
            print(x);
            """
        )
        pi = next(s for s, _ in iter_statements(program) if isinstance(s, Pi))
        pi.conflicts = []  # INJECTED BUG: claim no concurrent def reaches
        # Now "fold" the use the way constprop legitimately would.
        usemap = build_use_map(program)
        for use, holder in usemap.uses_of(pi):
            use.name = pi.control.name
            use.version = pi.control.version
            use.def_site = pi.control.def_site
        remove_stmt(pi)
        x_assign = next(
            s for s, _ in iter_statements(program)
            if isinstance(s, SAssign) and s.target == "x"
        )
        x_assign.value = EConst(1)  # constant-fold through the bad chain

        res = exhaustive_equivalence(baseline, program)
        assert not res.equal
        assert res.only_original  # the x = 2 behaviour disappeared

    def test_unsafe_phi_store_detected(self):
        """Materializing an upward-exposed φ as a store (the bug our
        constprop guards against) must be caught."""
        program, baseline = cssame_with_baseline(
            """
            s = 9;
            cobegin
            begin lock(L); t = s; unlock(L); end
            begin lock(L); s = -11; unlock(L); end
            coend
            print(s);
            """
        )
        # INJECTED BUG: write the control-flow value back as a store in
        # the first thread, after its critical section.
        t_assign = next(
            s for s, _ in iter_statements(program)
            if isinstance(s, SAssign) and s.target == "t"
        )
        bad_store = SAssign("s", EConst(9), version=99)
        t_assign.parent.insert_after(t_assign, bad_store)

        res = exhaustive_equivalence(baseline, program)
        assert not res.equal
        assert any(
            o[-1] == ("print", (9,)) for o in res.only_transformed
        )

    def test_unsafe_hoist_detected(self):
        """Moving a shared update out of its critical section (broken
        LICM lock-independence) must be caught."""
        program, baseline = cssame_with_baseline(
            """
            x = 0;
            cobegin
            begin lock(L); t1 = x; x = t1 + 1; unlock(L); end
            begin lock(L); t2 = x; x = t2 + 1; unlock(L); end
            coend
            print(x);
            """
        )
        # INJECTED BUG: hoist T0's read of x above the lock.
        from repro.ir.stmts import SLock

        t1_assign = next(
            s for s, _ in iter_statements(program)
            if isinstance(s, SAssign) and s.target.startswith("t1")
        )
        lock_stmt = next(
            s for s, _ in iter_statements(program) if isinstance(s, SLock)
        )
        remove_stmt(t1_assign)
        lock_stmt.parent.insert_before(lock_stmt, t1_assign)

        res = exhaustive_equivalence(baseline, program)
        assert not res.equal
        # The hoisted read can now see 0 while the other thread already
        # incremented: the lost update (print 1) becomes possible.
        assert any(
            o[-1] == ("print", (1,)) for o in res.only_transformed
        )

    def test_reordering_prints_detected(self):
        program, baseline = cssame_with_baseline(
            "print(1); print(2);"
        )
        first = program.body.items[0]
        program.body.remove(first)
        program.body.append(first)
        res = exhaustive_equivalence(baseline, program)
        assert not res.equal

    def test_real_licm_on_same_program_is_clean(self):
        """Control: the genuine LICM refuses the motion the injected
        bug performed, and the verifier agrees."""
        program, baseline = cssame_with_baseline(
            """
            x = 0;
            cobegin
            begin lock(L); t1 = x; x = t1 + 1; unlock(L); end
            begin lock(L); t2 = x; x = t2 + 1; unlock(L); end
            coend
            print(x);
            """
        )
        stats = lock_independent_code_motion(program)
        assert stats.total_moved == 0  # everything is lock-dependent
        res = exhaustive_equivalence(baseline, program)
        assert res.equal
