"""Property tests: mutex structures and locksets on generated programs.

The generator guarantees well-formed lock nesting, which gives us exact
oracles: every emitted critical section must become one mutex body, and
Definition 3's dominance conditions must hold for every body.
"""

from hypothesis import given, settings, strategies as st

from repro.cfg.builder import build_flow_graph
from repro.cfg.dominance import compute_dominators, compute_postdominators
from repro.ir.stmts import SLock
from repro.ir.structured import iter_statements
from repro.mutex.identify import identify_mutex_structures
from repro.mutex.lockset import compute_locksets
from repro.mutex.warnings import check_synchronization
from repro.synth import GeneratorConfig, generate_program

_configs = st.builds(
    GeneratorConfig,
    seed=st.integers(0, 10_000),
    n_threads=st.integers(1, 3),
    stmts_per_thread=st.integers(1, 6),
    n_locks=st.integers(1, 3),
    p_critical=st.floats(0.3, 0.9),
    p_if=st.floats(0.0, 0.3),
    p_while=st.floats(0.0, 0.2),
)


@given(_configs)
@settings(max_examples=40, deadline=None)
def test_every_section_becomes_a_body(config):
    program = generate_program(config)
    graph = build_flow_graph(program)
    structures = identify_mutex_structures(graph)
    lock_count = sum(
        1 for s, _ in iter_statements(program) if isinstance(s, SLock)
    )
    body_count = sum(len(s) for s in structures.values())
    assert body_count == lock_count
    assert check_synchronization(graph, structures) == []


@given(_configs)
@settings(max_examples=40, deadline=None)
def test_definition3_conditions(config):
    program = generate_program(config)
    graph = build_flow_graph(program)
    dom = compute_dominators(graph)
    pdom = compute_postdominators(graph)
    structures = identify_mutex_structures(graph)
    for structure in structures.values():
        for body in structure.bodies:
            # Condition 2: n DOM x and x PDOM n.
            assert dom.dominates(body.lock_node, body.unlock_node)
            assert pdom.dominates(body.unlock_node, body.lock_node)
            # Membership: strictly dominated by n, post-dominated by x.
            for member in body.nodes:
                assert dom.strictly_dominates(body.lock_node, member)
                assert pdom.dominates(body.unlock_node, member)
            assert body.unlock_node in body.nodes
            assert body.lock_node not in body.nodes


@given(_configs)
@settings(max_examples=30, deadline=None)
def test_bodies_of_one_lock_disjoint(config):
    program = generate_program(config)
    graph = build_flow_graph(program)
    structures = identify_mutex_structures(graph)
    for structure in structures.values():
        seen: set[int] = set()
        for body in structure.bodies:
            assert not (body.nodes & seen)
            seen |= body.nodes


@given(_configs)
@settings(max_examples=30, deadline=None)
def test_lockset_interior_consistency(config):
    """Every interior node of a body holds that body's lock; blocks in
    no body hold nothing from that structure."""
    program = generate_program(config)
    graph = build_flow_graph(program)
    structures = identify_mutex_structures(graph)
    locksets = compute_locksets(graph, structures)
    for lock_name, structure in structures.items():
        member_blocks = set()
        for body in structure.bodies:
            member_blocks |= body.interior_nodes() | {body.lock_node}
            for block_id in body.interior_nodes():
                assert lock_name in locksets[block_id]
        for block in graph.blocks:
            if block.id not in member_blocks and lock_name in locksets[block.id]:
                # only the unlock node of another body may be excluded
                raise AssertionError(
                    f"{lock_name} held outside its bodies at B{block.id}"
                )
