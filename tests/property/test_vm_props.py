"""Property tests for the VM and the exhaustive explorer."""

from hypothesis import given, settings, strategies as st

from repro.synth import GeneratorConfig, generate_program
from repro.vm.explore import explore
from repro.vm.machine import VirtualMachine, run_random

_configs = st.builds(
    GeneratorConfig,
    seed=st.integers(0, 5_000),
    n_threads=st.integers(1, 3),
    stmts_per_thread=st.integers(1, 4),
    n_shared=st.integers(1, 2),
    n_locks=st.integers(0, 2),
    p_if=st.floats(0.0, 0.3),
    p_critical=st.floats(0.0, 0.8),
)


@given(_configs, st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_runs_deterministic_per_seed(config, seed):
    program = generate_program(config)
    a = run_random(program, seed=seed)
    b = run_random(program, seed=seed)
    assert a.events == b.events
    assert a.memory == b.memory
    assert a.steps == b.steps


@given(_configs)
@settings(max_examples=15, deadline=None)
def test_random_outcomes_subset_of_explored(config):
    program = generate_program(config)
    res = explore(program, max_states=100_000)
    if not res.complete:
        return
    for seed in range(12):
        ex = run_random(program, seed=seed, raise_on_deadlock=False)
        assert ex.output_key() in res.outcomes


@given(_configs, st.integers(0, 50))
@settings(max_examples=25, deadline=None)
def test_mutual_exclusion_invariant(config, seed):
    """At every step, each lock has at most one owner and the owner is a
    live thread (checked by instrumenting the machine)."""
    program = generate_program(config)
    vm = VirtualMachine(program, seed=seed)
    original_step = vm._step

    def checked_step(thread):
        original_step(thread)
        for lock, owner in vm.locks.items():
            assert owner in vm.threads
            assert vm.threads[owner].status != "done"

    vm._step = checked_step
    vm.run(raise_on_deadlock=False)


@given(_configs, st.integers(0, 50))
@settings(max_examples=20, deadline=None)
def test_lock_instrumentation_consistent(config, seed):
    program = generate_program(config)
    ex = run_random(program, seed=seed, raise_on_deadlock=False)
    for lock, held in ex.lock_held_steps.items():
        assert held >= 0
        # A lock is held only after at least one acquisition.
        assert ex.lock_acquisitions.get(lock, 0) >= 1


@given(_configs)
@settings(max_examples=15, deadline=None)
def test_race_free_generated_programs_never_deadlock(config):
    config.race_free = True
    program = generate_program(config)
    res = explore(program, max_states=100_000)
    if res.complete:
        assert not res.can_deadlock
