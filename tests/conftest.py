"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.ir.lower import lower_program
from repro.ir.structured import ProgramIR
from repro.lang.parser import parse

FIGURE2_SOURCE = """
a = 0;
b = 0;
cobegin
T0: begin
    lock(L);
    a = 5;
    b = a + 3;
    if (b > 4) {
        a = a + b;
    }
    x = a;
    unlock(L);
end
T1: begin
    lock(L);
    a = b + 6;
    y = a;
    unlock(L);
end
coend
print(x);
print(y);
"""

FIGURE1_SOURCE = """
a = 1;
b = 2;
cobegin
T0: begin
    lock(L);
    a = a + b;
    unlock(L);
end
T1: begin
    f(a);
    lock(L);
    a = 3;
    b = b + g(a);
    unlock(L);
end
coend
print(a, b);
"""


def build(source: str) -> ProgramIR:
    """Parse + lower a source string."""
    return lower_program(parse(source))


@pytest.fixture
def figure2() -> ProgramIR:
    return build(FIGURE2_SOURCE)


@pytest.fixture
def figure1() -> ProgramIR:
    return build(FIGURE1_SOURCE)


@pytest.fixture
def figure2_source() -> str:
    return FIGURE2_SOURCE
