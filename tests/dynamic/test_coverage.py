"""Schedule-coverage metrics (`ScheduleCoverage`, `coverage_of`)."""

from repro.api import front_end
from repro.dynamic import ScheduleCoverage
from repro.vm.explore import explore
from repro.vm.machine import run_random


class TestScheduleCoverage:
    def test_empty_coverage_has_no_ratios(self):
        cov = ScheduleCoverage()
        assert cov.outcome_coverage is None
        assert cov.ordering_coverage is None
        assert cov.conflict_var_coverage is None
        assert cov.as_dict()["runs"] == 0

    def test_outcome_coverage_fraction(self):
        cov = ScheduleCoverage()
        cov.explored_outcomes = frozenset({("a",), ("b",), ("c",), ("d",)})
        cov.sampled_outcomes = {("a",), ("b",), ("z",)}  # z: fuel-cut noise
        assert cov.outcome_coverage == 0.5
        assert cov.sampled_classes == 3

    def test_ordering_coverage_counts_both_orders(self):
        cov = ScheduleCoverage()
        cov.orderings = {
            ("x", 1, 5): {"ab", "ba"},
            ("y", 2, 7): {"ab"},
        }
        assert cov.conflict_pairs == 2
        assert cov.orderings_exercised == 3
        assert cov.ordering_coverage == 0.75
        assert cov.dynamic_conflict_vars == {"x", "y"}

    def test_conflict_var_coverage(self):
        cov = ScheduleCoverage()
        cov.static_conflict_vars = {"x", "y"}
        cov.orderings = {("x", 1, 5): {"ab"}}
        assert cov.conflict_var_coverage == 0.5

    def test_print_class_reduction(self):
        cov = ScheduleCoverage()
        cov.sampled_outcomes = {
            (("call", "f", (1,)), ("print", (2,))),
            (("call", "f", (9,)), ("print", (2,))),  # same print class
        }
        assert cov.sampled_classes == 2
        assert cov.sampled_print_classes == 1


class TestExplorationCoverageOf:
    def test_sampled_runs_against_explorer(self):
        source = (
            "x = 0;\n"
            "cobegin\nbegin x = 1; end\nbegin x = 2; end\ncoend\nprint(x);\n"
        )
        program = front_end(source)
        result = explore(program)
        assert result.complete
        assert result.print_classes == 2  # prints 1 or 2
        sampled = {
            run_random(program, seed=s).output_key() for s in range(24)
        }
        cov = result.coverage_of(sampled)
        assert cov["outcome_classes"] == 2
        assert cov["sampled_hit"] == cov["sampled_classes"] == 2
        assert cov["outcome_coverage"] == 1.0
