"""Vector clocks and the online happens-before detector."""

import pytest

from repro.api import front_end
from repro.dynamic import HBTracker, VectorClock
from repro.vm.compile import compile_program
from repro.vm.machine import VirtualMachine


def run_tracked(source: str, seed: int = 0):
    program = compile_program(front_end(source))
    hb = HBTracker(program)
    vm = VirtualMachine(program, seed=seed, hb=hb)
    execution = vm.run(raise_on_deadlock=False)
    return hb, execution


def run_all_seeds(source: str, seeds=range(16)):
    """Union of race variables over several seeds."""
    program = compile_program(front_end(source))
    race_vars: set[str] = set()
    for seed in seeds:
        hb = HBTracker(program)
        VirtualMachine(program, seed=seed, hb=hb).run(raise_on_deadlock=False)
        race_vars |= hb.race_vars()
    return race_vars


class TestVectorClock:
    def test_tick_and_get(self):
        clock = VectorClock()
        assert clock.get((0,)) == 0
        assert clock.tick((0,)) == 1
        assert clock.tick((0,)) == 2
        assert clock.get((0,)) == 2
        assert clock.get((1,)) == 0  # absent components read 0

    def test_join_is_pointwise_max(self):
        a = VectorClock({(0,): 3, (1,): 1})
        b = VectorClock({(1,): 5, (2,): 2})
        a.join(b)
        assert a.times == {(0,): 3, (1,): 5, (2,): 2}

    def test_leq_and_concurrent(self):
        lo = VectorClock({(0,): 1})
        hi = VectorClock({(0,): 2, (1,): 1})
        assert lo.leq(hi)
        assert not hi.leq(lo)
        assert not lo.concurrent_with(hi)
        left = VectorClock({(0,): 2})
        right = VectorClock({(1,): 2})
        assert left.concurrent_with(right)

    def test_copy_is_independent(self):
        a = VectorClock({(0,): 1})
        b = a.copy()
        b.tick((0,))
        assert a.get((0,)) == 1

    def test_eq_ignores_zero_components(self):
        assert VectorClock({(0,): 1, (1,): 0}) == VectorClock({(0,): 1})


class TestClockMerges:
    def test_release_acquire_orders_critical_sections(self):
        """Both updates under one lock: never a dynamic race."""
        source = """
        x = 0;
        cobegin
        begin lock(L); x = x + 1; unlock(L); end
        begin lock(L); x = x + 1; unlock(L); end
        coend
        print(x);
        """
        assert run_all_seeds(source) == set()

    def test_unprotected_counter_races(self):
        source = """
        x = 0;
        cobegin
        begin x = x + 1; end
        begin x = x + 1; end
        coend
        print(x);
        """
        assert "x" in run_all_seeds(source)

    def test_set_wait_orders_producer_consumer(self):
        source = """
        data = 0;
        cobegin
        begin data = 42; set(ready); end
        begin wait(ready); out = data + 1; end
        coend
        print(out);
        """
        assert run_all_seeds(source) == set()

    def test_coend_join_orders_post_parallel_reads(self):
        """The parent's read after coend absorbs both children's clocks."""
        source = """
        cobegin
        begin a = 1; end
        begin b = 2; end
        coend
        c = a + b;
        print(c);
        """
        assert run_all_seeds(source) == set()

    def test_fork_orders_pre_cobegin_writes(self):
        source = """
        a = 7;
        cobegin
        begin b = a + 1; end
        begin c = a + 2; end
        coend
        print(b, c);
        """
        assert run_all_seeds(source) == set()

    def test_barrier_joins_all_participants(self):
        source = """
        left = 0; right = 0;
        cobegin
        begin left = 3; barrier(B); t0 = left + right; end
        begin right = 4; barrier(B); t1 = left + right; end
        coend
        print(t0, t1);
        """
        assert run_all_seeds(source) == set()

    def test_siblings_without_sync_race(self):
        """Write vs read across unsynchronized siblings is flagged."""
        source = """
        a = 0;
        cobegin
        begin a = 1; end
        begin b = a + 1; end
        coend
        print(b);
        """
        assert "a" in run_all_seeds(source)


class TestRaceRecords:
    def test_race_carries_locations_and_witness(self):
        source = """
        x = 0;
        cobegin
        begin x = x + 1; end
        begin x = x + 1; end
        coend
        print(x);
        """
        program = compile_program(front_end(source))
        race = None
        for seed in range(32):
            hb = HBTracker(program)
            VirtualMachine(program, seed=seed, hb=hb).run()
            if hb.races:
                race = hb.races[0]
                break
        assert race is not None
        assert race.var == "x"
        assert race.kind in ("write-write", "write-read")
        assert race.tid_a != race.tid_b
        assert race.step_b == len(race.witness) - 1

    def test_witness_replay_reproduces_race(self):
        source = """
        x = 0;
        cobegin
        begin x = x + 1; end
        begin x = x + 1; end
        coend
        print(x);
        """
        program = compile_program(front_end(source))
        for seed in range(32):
            hb = HBTracker(program)
            VirtualMachine(program, seed=seed, hb=hb).run()
            for race in hb.races:
                fresh = HBTracker(program)
                VirtualMachine(program, hb=fresh).replay(list(race.witness))
                assert race.pair_key() in {r.pair_key() for r in fresh.races}
            if hb.races:
                return
        pytest.fail("no seed exhibited the race")

    def test_observable_args_not_monitored(self):
        """print/call argument reads are outside the monitor's scope."""
        source = """
        a = 0;
        cobegin
        begin lock(L); a = 5; unlock(L); end
        begin print(a); end
        coend
        """
        assert run_all_seeds(source) == set()


class TestOrderingCoverage:
    def test_conflict_orderings_accumulate(self):
        source = """
        x = 0;
        cobegin
        begin x = 1; end
        begin y = x; end
        coend
        print(y);
        """
        program = compile_program(front_end(source))
        merged: dict = {}
        for seed in range(24):
            hb = HBTracker(program)
            VirtualMachine(program, seed=seed, hb=hb).run()
            hb.merge_orderings(merged)
        assert merged  # at least the x write/read pair
        orders = set().union(*merged.values())
        assert orders <= {"ab", "ba"}
        assert len(orders) == 2  # both orders seen across 24 seeds

    def test_work_counters_positive(self):
        hb, execution = run_tracked("x = 1; y = x + 1; print(y);")
        assert hb.checks > 0
        assert execution.steps > 0
