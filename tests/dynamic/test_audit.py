"""Static ↔ dynamic cross-validation (`audit_source`)."""

from pathlib import Path

import pytest

from repro.dynamic.audit import (
    CONFIRMED,
    SCOPE_MONITORED,
    SCOPE_OBSERVABLE,
    UNCONFIRMED,
    audit_source,
)
from repro.mutex.races import RaceReport

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def example(name: str) -> str:
    return (EXAMPLES / name).read_text()


class TestRaceCounter:
    @pytest.fixture(scope="class")
    def report(self):
        return audit_source(example("race_counter.par"), runs=16)

    def test_both_static_races_confirmed(self, report):
        assert len(report.confirmed) == 2
        assert not report.unconfirmed
        kinds = {f.report.kind for f in report.confirmed}
        assert kinds == {"write-write", "write-read"}

    def test_witnesses_replay_verified(self, report):
        for finding in report.confirmed:
            assert finding.witness_verified
            assert finding.dynamic is not None
            assert len(finding.dynamic.witness) > 0

    def test_sound(self, report):
        assert report.sound
        assert not report.dynamic_only

    def test_exit_codes(self, report):
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_coverage_complete_for_tiny_program(self, report):
        cov = report.coverage
        assert cov.runs == 16
        assert cov.explore_complete
        assert cov.outcome_coverage == 1.0
        assert cov.conflict_var_coverage == 1.0


class TestFigure1:
    @pytest.fixture(scope="class")
    def report(self):
        return audit_source(example("figure1.par"), runs=16)

    def test_static_race_unconfirmed_observable(self, report):
        """The f(a) read is an observable-event argument: the static
        race exists, but no *dynamic* (memory-statement) race does."""
        assert not report.confirmed
        assert len(report.unconfirmed) == 1
        finding = report.unconfirmed[0]
        assert finding.status == UNCONFIRMED
        assert finding.scope == SCOPE_OBSERVABLE
        assert "observable" in finding.message()

    def test_no_dynamic_races(self, report):
        assert not report.dynamic
        assert report.exit_code(strict=True) == 0


class TestCleanPrograms:
    @pytest.mark.parametrize(
        "name",
        ["bank_transfer.par", "event_pipeline.par", "barrier_phase.par"],
    )
    def test_no_findings_at_all(self, name):
        report = audit_source(example(name), runs=12)
        assert not report.confirmed
        assert not report.dynamic
        assert report.sound
        assert report.exit_code(strict=True) == 0


class TestSoundnessCheck:
    def test_dynamic_only_fails_even_without_strict(self):
        """Feeding an empty static report makes every dynamic race a
        dynamic-only finding — the audit must fail regardless of
        strictness (it is a soundness check on the analysis)."""
        report = audit_source(
            example("race_counter.par"), runs=16, static_races=[]
        )
        assert report.dynamic  # the race is real and sampled
        assert report.dynamic_only
        assert not report.sound
        assert report.exit_code(strict=False) == 1

    def test_fabricated_static_race_unconfirmed_monitored(self):
        """A fabricated race on a memory variable no schedule exhibits
        stays unconfirmed with the 'monitored' (possibly infeasible)
        scope."""
        fake = RaceReport(
            "checking", 1, 2, "write-write", frozenset(), frozenset()
        )
        report = audit_source(
            example("bank_transfer.par"), runs=8, static_races=[fake]
        )
        assert len(report.unconfirmed) == 1
        finding = report.unconfirmed[0]
        assert finding.scope == SCOPE_MONITORED
        assert "possibly infeasible" in finding.message()


class TestReportShape:
    def test_as_dict_roundtrips_to_json(self):
        import json

        report = audit_source(example("race_counter.par"), runs=8)
        doc = json.loads(json.dumps(report.as_dict()))
        assert doc["sound"] is True
        assert len(doc["confirmed"]) == 2
        assert doc["coverage"]["runs"] == 8
        assert doc["seeds"] == list(range(8))
        for finding in doc["confirmed"]:
            assert finding["status"] == CONFIRMED
            assert finding["witness_verified"] is True
            assert finding["dynamic"]["witness"]

    def test_no_explore_leaves_yardstick_unset(self):
        report = audit_source(
            example("race_counter.par"), runs=4, do_explore=False
        )
        assert report.coverage.explored_outcomes is None
        assert report.coverage.outcome_coverage is None
        assert report.coverage.as_dict()["explored_outcome_classes"] is None

    def test_seed_base_shifts_seeds(self):
        report = audit_source(
            example("race_counter.par"), runs=3, seed_base=10, do_explore=False
        )
        assert report.seeds == [10, 11, 12]

    def test_deadlock_runs_exit_2(self):
        source = """
        cobegin
        begin lock(A); lock(B); unlock(B); unlock(A); end
        begin lock(B); lock(A); unlock(A); unlock(B); end
        coend
        print(0);
        """
        report = audit_source(source, runs=32, do_explore=False)
        # Some seed hits the circular-wait interleaving.
        assert report.coverage.deadlock_runs > 0
        assert report.exit_code(strict=False) == 2

    def test_audit_work_counters_recorded(self):
        from repro.obs.prof import WORK_PREFIX
        from repro.obs.trace import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            audit_source(example("race_counter.par"), runs=4, do_explore=False)
        counters = tracer.metrics.as_dict()["counters"]
        assert counters[f"{WORK_PREFIX}audit.runs"] == 4
        assert counters[f"{WORK_PREFIX}audit.access_checks"] > 0
        assert counters[f"{WORK_PREFIX}audit.dynamic_races"] >= 1
