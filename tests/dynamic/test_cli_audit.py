"""CLI surface of the dynamic observatory: ``audit``, ``run --json``,
``witness`` replay tracing."""

import json
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


@pytest.fixture
def racy_file():
    return str(EXAMPLES / "race_counter.par")


@pytest.fixture
def clean_file():
    return str(EXAMPLES / "bank_transfer.par")


class TestAudit:
    def test_confirmed_races_exit_0_by_default(self, racy_file, capsys):
        assert main(["audit", racy_file]) == 0
        out = capsys.readouterr().out
        assert "confirmed:" in out
        assert "replay-verified" in out
        assert "schedule coverage" in out

    def test_strict_gates_on_confirmed(self, racy_file):
        assert main(["audit", "--strict", racy_file]) == 1

    def test_clean_program_strict_exit_0(self, clean_file, capsys):
        assert main(["audit", "--strict", clean_file]) == 0
        assert "no races" in capsys.readouterr().out

    def test_figure1_unconfirmed_observable(self, capsys):
        assert main(["audit", "--strict", str(EXAMPLES / "figure1.par")]) == 0
        out = capsys.readouterr().out
        assert "unconfirmed (observable-event arguments" in out

    def test_json_document(self, racy_file, capsys):
        assert main(["audit", "--json", racy_file]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["sound"] is True
        assert len(doc["confirmed"]) == 2
        assert doc["coverage"]["outcome_coverage"] == 1.0

    def test_no_explore_and_runs_flags(self, racy_file, capsys):
        assert main(
            ["audit", "--json", "--no-explore", "--runs", "4", racy_file]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["coverage"]["runs"] == 4
        assert doc["coverage"]["explored_outcome_classes"] is None

    def test_trace_flag_writes_trace(self, racy_file, tmp_path, capsys):
        trace = tmp_path / "audit.jsonl"
        assert main(["audit", "--trace", str(trace), racy_file]) == 0
        kinds = {
            json.loads(line).get("kind")
            for line in trace.read_text().splitlines()
        }
        assert "dynamic-race" in kinds
        assert "vm-step" in kinds


class TestRunJson:
    def test_lock_counters_and_timeline(self, clean_file, capsys):
        assert main(["run", "--json", "--seed", "3", clean_file]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["deadlocked"] is False
        assert doc["events"] == [["print", [80, 70]]]
        ledger = doc["locks"]["ledger"]
        assert ledger["acquisitions"] == 2
        assert ledger["held_steps"] > 0
        assert ledger["held_intervals"] == 2
        assert ledger["longest_held"] > 0
        assert doc["lock_intervals"]  # full timeline present
        for interval in doc["lock_intervals"]:
            assert interval["to"] >= interval["from"]

    def test_deadlock_exit_2_with_open_interval(self, tmp_path, capsys):
        path = tmp_path / "dead.par"
        path.write_text(
            "cobegin\n"
            "begin lock(A); lock(B); unlock(B); unlock(A); end\n"
            "begin lock(B); lock(A); unlock(A); unlock(B); end\n"
            "coend\nprint(0);\n"
        )
        for seed in range(64):
            code = main(["run", "--json", "--seed", str(seed), str(path)])
            doc = json.loads(capsys.readouterr().out)
            if code == 2:
                assert doc["deadlocked"] is True
                assert any(i["open"] for i in doc["lock_intervals"])
                return
        pytest.fail("no seed deadlocked")


class TestWitnessTrace:
    def test_replay_emits_vm_events(self, clean_file, tmp_path, capsys):
        trace = tmp_path / "w.jsonl"
        assert main(
            ["witness", clean_file, "80", "70", "--trace", str(trace)]
        ) == 0
        out = capsys.readouterr().out
        assert "replayed:" in out
        assert "80 70" in out
        kinds = {
            json.loads(line).get("kind")
            for line in trace.read_text().splitlines()
        }
        assert "vm-step" in kinds
        assert "lock-acquire" in kinds
        assert "lock-held-interval" in kinds

    def test_chrome_trace_has_lock_tracks(self, clean_file, tmp_path):
        trace = tmp_path / "w.json"
        assert main(
            [
                "witness", clean_file, "80", "70",
                "--trace", str(trace), "--trace-format", "chrome",
            ]
        ) == 0
        doc = json.loads(trace.read_text())
        lock_events = [
            e for e in doc["traceEvents"]
            if e.get("pid") == 2 and e.get("ph") == "X"
        ]
        assert lock_events
        for event in lock_events:
            assert event["dur"] >= 0
            assert event["args"]["lock"] == "ledger"
